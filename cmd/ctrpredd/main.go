// Command ctrpredd serves the simulator as a long-lived HTTP/JSON job
// service: POST a simulation or experiment request, stream its progress
// as NDJSON, and fetch completed results from a content-addressed
// cache. See internal/server for the API surface.
//
// Usage:
//
//	ctrpredd -addr localhost:8844 -workers 4 -queue 8
//	ctrpredd -smoke            # boot, self-test one job over HTTP, exit
//
// A first session:
//
//	curl -s localhost:8844/v1/benchmarks | jq '.[].name'
//	curl -s -X POST localhost:8844/v1/sim?stream=1 \
//	     -d '{"bench":"mcf","scheme":"pred-context","instructions":1000000}'
//	curl -s localhost:8844/metrics | jq .
//
// SIGINT/SIGTERM drain gracefully: admission stops, running jobs get
// the -drain window to finish, then their contexts are cancelled and
// the simulator stops within one checkpoint interval.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ctrpred/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ctrpredd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "localhost:8844", "listen address")
		workers = fs.Int("workers", 0, "concurrent jobs (0 = one per CPU)")
		queue   = fs.Int("queue", 0, "jobs queued beyond the running ones (0 = 2x workers, -1 = none); a full queue answers 429")
		cache   = fs.Int("cache", 256, "result-cache entries (-1 disables caching)")
		timeout = fs.Duration("timeout", 0, "default per-job deadline for requests that carry none (0 = unbounded)")
		drain   = fs.Duration("drain", 5*time.Second, "graceful-shutdown window before running jobs are cancelled")
		pprofF  = fs.Bool("pprof", false, "expose /debug/pprof")
		smoke   = fs.Bool("smoke", false, "boot on an ephemeral port, push one job through the full HTTP path, verify the result and the cache, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := server.Config{
		Workers: *workers, Backlog: *queue, CacheEntries: *cache,
		DefaultTimeout: *timeout, DrainTimeout: *drain, EnablePprof: *pprofF,
	}
	if *smoke {
		return runSmoke(cfg, stdout, stderr)
	}

	s := server.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "ctrpredd: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "ctrpredd listening on http://%s\n", ln.Addr())

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "ctrpredd: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	fmt.Fprintf(stdout, "ctrpredd: draining (up to %s before jobs are cancelled)\n", *drain)
	// Jobs first — Shutdown drains or cancels them, which lets in-flight
	// request handlers finish — then the HTTP listener.
	sdCtx, cancel := context.WithTimeout(context.Background(), *drain+30*time.Second)
	defer cancel()
	if err := s.Shutdown(sdCtx); err != nil {
		fmt.Fprintf(stderr, "ctrpredd: drain: %v\n", err)
		return 1
	}
	if err := hs.Shutdown(sdCtx); err != nil {
		fmt.Fprintf(stderr, "ctrpredd: http shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "ctrpredd: bye")
	return 0
}

// runSmoke is the self-test behind -smoke: a real listener, a real
// streamed job, a real cache hit — the CI boot check without curl.
func runSmoke(cfg server.Config, stdout, stderr io.Writer) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "ctrpredd smoke: FAIL: "+format+"\n", args...)
		return 1
	}
	s := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("listen: %v", err)
	}
	hs := &http.Server{Handler: s}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(stdout, "ctrpredd smoke: listening on %s\n", base)

	const body = `{"bench":"mcf","scheme":"pred-context","footprint":"64K","instructions":30000,"seed":7}`

	// A streamed job must open with admission and close with a result.
	resp, err := http.Post(base+"/v1/sim?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		return fail("POST stream: %v", err)
	}
	var first, last server.Event
	events := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev server.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			resp.Body.Close()
			return fail("bad stream line %q: %v", sc.Text(), err)
		}
		if events == 0 {
			first = ev
		}
		last = ev
		events++
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		return fail("stream read: %v", err)
	}
	if first.Event != "accepted" || first.Key == "" {
		return fail("first event = %+v, want accepted with key", first)
	}
	if last.Event != "result" || len(last.Snapshot) == 0 {
		return fail("terminal event = %+v, want result with snapshot", last)
	}
	fmt.Fprintf(stdout, "ctrpredd smoke: streamed %d events, result key %s\n", events, last.Key)

	// The identical request again must be answered from the cache.
	resp, err = http.Post(base+"/v1/sim", "application/json", strings.NewReader(body))
	if err != nil {
		return fail("POST repeat: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		return fail("repeat request: status %d, X-Cache %q, want 200/hit", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	fmt.Fprintln(stdout, "ctrpredd smoke: repeat request served from cache")

	hz, err := http.Get(base + "/healthz")
	if err != nil {
		return fail("GET healthz: %v", err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		return fail("healthz = %d, want 200", hz.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fail("shutdown: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fail("http shutdown: %v", err)
	}
	fmt.Fprintln(stdout, "ctrpredd smoke: PASS")
	return 0
}
