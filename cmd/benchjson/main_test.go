package main

import (
	"strconv"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkSingleRunMcfContext-8 \t       5\t  15519015 ns/op\t   3221904 sim_instrs/s\t 4546041 B/op\t     533 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if b.Name != "SingleRunMcfContext" {
		t.Errorf("Name = %q", b.Name)
	}
	if b.Iterations != 5 {
		t.Errorf("Iterations = %d", b.Iterations)
	}
	want := map[string]float64{
		"ns/op": 15519015, "sim_instrs/s": 3221904, "B/op": 4546041, "allocs/op": 533,
	}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("Metrics[%q] = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestParseBenchLineNoProcsSuffix(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkFigure4Timeline \t 3\t 123456 ns/op")
	if !ok || b.Name != "Figure4Timeline" {
		t.Fatalf("parse = %+v, %v", b, ok)
	}
}

// TestCheckLabelRejectsDuplicates pins the duplicate-label guard: an
// existing label is refused, a fresh one is fine, and -force overrides.
func TestCheckLabelRejectsDuplicates(t *testing.T) {
	ledger := &Ledger{Runs: []RunEntry{
		{Label: "before", Date: "2026-01-01T00:00:00Z"},
		{Label: "after", Date: "2026-01-02T00:00:00Z"},
	}}
	if err := checkLabel(ledger, "after", false); err == nil {
		t.Error("duplicate label accepted without -force")
	}
	if err := checkLabel(ledger, "after", true); err != nil {
		t.Errorf("-force still rejected duplicate: %v", err)
	}
	if err := checkLabel(ledger, "after-v2", false); err != nil {
		t.Errorf("fresh label rejected: %v", err)
	}
	if err := checkLabel(&Ledger{}, "first", false); err != nil {
		t.Errorf("empty ledger rejected: %v", err)
	}
}

// TestCompareRuns pins the regression-warning logic: cost metrics warn
// when they rise >10%, throughput metrics when they fall >10%, moves
// inside the threshold and improvements stay quiet. A benchmark present
// in only one run is reported as added or removed (units without a
// counterpart are still skipped silently — a new b.ReportMetric is not
// a suite change).
func TestCompareRuns(t *testing.T) {
	prev := RunEntry{Label: "before", Date: "2026-01-01T00:00:00Z", Benchmarks: []Benchmark{
		{Name: "Hot", Metrics: map[string]float64{"ns/op": 100, "sim_instrs/s": 10_000_000, "B/op": 1000}},
		{Name: "Gone", Metrics: map[string]float64{"ns/op": 50}},
	}}
	cur := RunEntry{Label: "after", Benchmarks: []Benchmark{
		{Name: "Hot", Metrics: map[string]float64{
			"ns/op":        125,       // +25%: cost regression, warn
			"sim_instrs/s": 8_000_000, // -20%: throughput regression, warn
			"B/op":         1050,      // +5%: inside threshold, quiet
			"allocs/op":    999,       // no counterpart unit in prev, skip
		}},
		{Name: "New", Metrics: map[string]float64{"ns/op": 1}}, // report as added
	}}
	warnings := compareRuns(prev, cur)
	if len(warnings) != 4 {
		t.Fatalf("got %d warnings %v, want 4", len(warnings), warnings)
	}
	for _, want := range []string{
		"ns/op regressed +25.0%",
		"sim_instrs/s regressed -20.0%",
		"New added",
		"Gone removed",
	} {
		found := false
		for _, w := range warnings {
			if strings.Contains(w, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no warning containing %q in %v", want, warnings)
		}
	}

	// Improvements never warn, in either direction; only the dropped
	// benchmark is reported.
	better := RunEntry{Label: "faster", Benchmarks: []Benchmark{
		{Name: "Hot", Metrics: map[string]float64{"ns/op": 50, "sim_instrs/s": 20_000_000}},
	}}
	if w := compareRuns(prev, better); len(w) != 1 || !strings.Contains(w[0], "Gone removed") {
		t.Errorf("improvement run: warnings = %v, want only the removal of Gone", w)
	}
}

// TestCompareRunsDisjointSuites reproduces the ledger shape that
// motivated the added/removed reporting: the pr8-cluster entry
// (ClusterSweepNodes1/2/4) followed by the pr9-chaos entry
// (ClusterChaosNodes1/2/4) share no benchmark at all. The old
// compareRuns returned nothing — indistinguishable from "compared
// everything, no movement" — where it must now say every benchmark
// changed hands.
func TestCompareRunsDisjointSuites(t *testing.T) {
	m := func() map[string]float64 { return map[string]float64{"ns/op": 1e9, "sim_instrs/s": 1e7} }
	prev := RunEntry{Label: "pr8-cluster", Date: "2026-01-01T00:00:00Z", Benchmarks: []Benchmark{
		{Name: "ClusterSweepNodes1", Metrics: m()},
		{Name: "ClusterSweepNodes2", Metrics: m()},
		{Name: "ClusterSweepNodes4", Metrics: m()},
	}}
	cur := RunEntry{Label: "pr9-chaos", Benchmarks: []Benchmark{
		{Name: "ClusterChaosNodes1", Metrics: m()},
		{Name: "ClusterChaosNodes2", Metrics: m()},
		{Name: "ClusterChaosNodes4", Metrics: m()},
	}}
	warnings := compareRuns(prev, cur)
	if len(warnings) != 6 {
		t.Fatalf("got %d warnings %v, want 6 (3 added + 3 removed)", len(warnings), warnings)
	}
	for _, n := range []int{1, 2, 4} {
		wantAdd := "ClusterChaosNodes" + strconv.Itoa(n) + " added"
		wantGone := "ClusterSweepNodes" + strconv.Itoa(n) + " removed"
		for _, want := range []string{wantAdd, wantGone} {
			found := false
			for _, w := range warnings {
				if strings.Contains(w, want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no warning containing %q in %v", want, warnings)
			}
		}
	}
	// No spurious metric regressions between unrelated benchmarks.
	for _, w := range warnings {
		if strings.Contains(w, "regressed") {
			t.Errorf("disjoint suites produced a metric regression: %q", w)
		}
	}
}

func TestParseBenchLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"BenchmarkFoo", // no fields
		"PASS",
		"BenchmarkBar \t x\t 5 ns/op",
		"--- BENCH: BenchmarkBaz",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine(%q) accepted", line)
		}
	}
}
