package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkSingleRunMcfContext-8 \t       5\t  15519015 ns/op\t   3221904 sim_instrs/s\t 4546041 B/op\t     533 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if b.Name != "SingleRunMcfContext" {
		t.Errorf("Name = %q", b.Name)
	}
	if b.Iterations != 5 {
		t.Errorf("Iterations = %d", b.Iterations)
	}
	want := map[string]float64{
		"ns/op": 15519015, "sim_instrs/s": 3221904, "B/op": 4546041, "allocs/op": 533,
	}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("Metrics[%q] = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestParseBenchLineNoProcsSuffix(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkFigure4Timeline \t 3\t 123456 ns/op")
	if !ok || b.Name != "Figure4Timeline" {
		t.Fatalf("parse = %+v, %v", b, ok)
	}
}

func TestParseBenchLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"BenchmarkFoo", // no fields
		"PASS",
		"BenchmarkBar \t x\t 5 ns/op",
		"--- BENCH: BenchmarkBaz",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine(%q) accepted", line)
		}
	}
}
