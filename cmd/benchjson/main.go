// Command benchjson converts `go test -bench` output into the tracked
// benchmark ledger BENCH_sim.json. It reads benchmark output on stdin,
// parses every result line — including custom metrics such as
// sim_instrs/s — and appends one labeled run entry to the ledger, so
// before/after comparisons live in the repository next to the code they
// measure.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -label after -o BENCH_sim.json
//
// The input stream is echoed to stderr so piping through benchjson does
// not hide benchmark progress.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line: the benchmark name, its iteration
// count, and every reported metric keyed by unit (ns/op, B/op,
// allocs/op, and any custom b.ReportMetric unit).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// RunEntry is one labeled invocation of the benchmark suite.
type RunEntry struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	Go         string      `json:"go,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Ledger is the whole BENCH_sim.json file.
type Ledger struct {
	Runs []RunEntry `json:"runs"`
}

func main() {
	var (
		label = flag.String("label", "local", "label for this run entry (e.g. before, after, ci)")
		out   = flag.String("o", "BENCH_sim.json", "ledger file to append to (created if absent)")
		quiet = flag.Bool("q", false, "do not echo the input stream to stderr")
	)
	flag.Parse()

	entry := RunEntry{Label: *label, Date: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	failed := false
	for sc.Scan() {
		line := sc.Text()
		if !*quiet {
			fmt.Fprintln(os.Stderr, line)
		}
		switch {
		case strings.HasPrefix(line, "cpu:"):
			entry.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"):
			entry.Go = strings.TrimSpace(entry.Go + " " + strings.TrimSpace(line))
		case strings.HasPrefix(line, "FAIL"):
			failed = true
		}
		if b, ok := parseBenchLine(line); ok {
			entry.Benchmarks = append(entry.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if failed {
		fatal(fmt.Errorf("benchmark run reported FAIL; not recording"))
	}
	if len(entry.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found on stdin"))
	}

	var ledger Ledger
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fatal(fmt.Errorf("parsing existing %s: %w", *out, err))
		}
	} else if !os.IsNotExist(err) {
		fatal(err)
	}
	ledger.Runs = append(ledger.Runs, entry)

	data, err := json.MarshalIndent(&ledger, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks as %q in %s\n",
		len(entry.Benchmarks), *label, *out)
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   5   15519015 ns/op   3221904 sim_instrs/s   533 allocs/op
//
// Fields after the iteration count come in (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
