// Command benchjson converts `go test -bench` output into the tracked
// benchmark ledger BENCH_sim.json. It reads benchmark output on stdin,
// parses every result line — including custom metrics such as
// sim_instrs/s — and appends one labeled run entry to the ledger, so
// before/after comparisons live in the repository next to the code they
// measure.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -label after -o BENCH_sim.json
//
// The input stream is echoed to stderr so piping through benchjson does
// not hide benchmark progress.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line: the benchmark name, its iteration
// count, and every reported metric keyed by unit (ns/op, B/op,
// allocs/op, and any custom b.ReportMetric unit).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// RunEntry is one labeled invocation of the benchmark suite.
type RunEntry struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	Go         string      `json:"go,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Ledger is the whole BENCH_sim.json file.
type Ledger struct {
	Runs []RunEntry `json:"runs"`
}

func main() {
	var (
		label = flag.String("label", "local", "label for this run entry (e.g. before, after, ci)")
		out   = flag.String("o", "BENCH_sim.json", "ledger file to append to (created if absent)")
		quiet = flag.Bool("q", false, "do not echo the input stream to stderr")
		force = flag.Bool("force", false, "record even if the ledger already has an entry with this label")
	)
	flag.Parse()

	entry := RunEntry{Label: *label, Date: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	failed := false
	for sc.Scan() {
		line := sc.Text()
		if !*quiet {
			fmt.Fprintln(os.Stderr, line)
		}
		switch {
		case strings.HasPrefix(line, "cpu:"):
			entry.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"):
			entry.Go = strings.TrimSpace(entry.Go + " " + strings.TrimSpace(line))
		case strings.HasPrefix(line, "FAIL"):
			failed = true
		}
		if b, ok := parseBenchLine(line); ok {
			entry.Benchmarks = append(entry.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if failed {
		fatal(fmt.Errorf("benchmark run reported FAIL; not recording"))
	}
	if len(entry.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found on stdin"))
	}

	var ledger Ledger
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fatal(fmt.Errorf("parsing existing %s: %w", *out, err))
		}
	} else if !os.IsNotExist(err) {
		fatal(err)
	}
	if err := checkLabel(&ledger, entry.Label, *force); err != nil {
		fatal(fmt.Errorf("%w in %s; pick a new label or pass -force to append anyway", err, *out))
	}
	// Non-blocking regression check: compare the fresh entry against the
	// ledger's previous last run and warn about >10% movements in the
	// wrong direction. Advisory only — benchmark hosts are noisy, so the
	// exit status never depends on it; authoritative comparisons remain
	// deliberate before/after entries (see EXPERIMENTS.md).
	if len(ledger.Runs) > 0 {
		prev := ledger.Runs[len(ledger.Runs)-1]
		for _, w := range compareRuns(prev, entry) {
			fmt.Fprintln(os.Stderr, "benchjson: WARNING:", w)
		}
	}
	ledger.Runs = append(ledger.Runs, entry)

	data, err := json.MarshalIndent(&ledger, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks as %q in %s\n",
		len(entry.Benchmarks), *label, *out)
}

// checkLabel refuses to append a run whose label the ledger already
// holds: labels address entries in before/after comparisons, and a
// silent duplicate would make "the <label> run" ambiguous. force
// overrides for deliberate re-recording.
func checkLabel(ledger *Ledger, label string, force bool) error {
	if force {
		return nil
	}
	for _, run := range ledger.Runs {
		if run.Label == label {
			return fmt.Errorf("ledger already has a run labeled %q (recorded %s)", label, run.Date)
		}
	}
	return nil
}

// regressionThreshold is the relative movement past which compareRuns
// flags a metric: 10%, chosen to sit above typical same-host run-to-run
// noise while still catching real slowdowns.
const regressionThreshold = 0.10

// compareRuns diffs cur against prev benchmark-by-benchmark and
// returns one warning line per metric that moved more than
// regressionThreshold in the wrong direction. Throughput units
// (anything ending in "/s") regress downward; cost units (ns/op, B/op,
// allocs/op, …) regress upward. A benchmark present in only one run
// has no numbers to compare, but its appearance or disappearance is
// itself worth a line: two consecutive entries with disjoint suites
// (it happened — a cluster-only run following a chaos-only run) would
// otherwise diff as "no movement" when really nothing was compared at
// all.
func compareRuns(prev, cur RunEntry) []string {
	prevBy := make(map[string]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		prevBy[b.Name] = b
	}
	curBy := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	var warnings []string
	for _, b := range prev.Benchmarks {
		if _, ok := curBy[b.Name]; !ok {
			warnings = append(warnings, fmt.Sprintf(
				"%s removed: present in %q (%s) but not in this run",
				b.Name, prev.Label, prev.Date))
		}
	}
	for _, b := range cur.Benchmarks {
		pb, ok := prevBy[b.Name]
		if !ok {
			warnings = append(warnings, fmt.Sprintf(
				"%s added: no baseline in %q (%s) to compare against",
				b.Name, prev.Label, prev.Date))
			continue
		}
		for unit, v := range b.Metrics {
			pv, ok := pb.Metrics[unit]
			if !ok || pv == 0 {
				continue
			}
			higherIsBetter := strings.HasSuffix(unit, "/s")
			change := (v - pv) / pv
			regressed := change > regressionThreshold
			if higherIsBetter {
				regressed = change < -regressionThreshold
			}
			if regressed {
				warnings = append(warnings, fmt.Sprintf(
					"%s %s regressed %+.1f%% vs %q (%s): %g -> %g",
					b.Name, unit, 100*change, prev.Label, prev.Date, pv, v))
			}
		}
	}
	sort.Strings(warnings)
	return warnings
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   5   15519015 ns/op   3221904 sim_instrs/s   533 allocs/op
//
// Fields after the iteration count come in (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
