package main

import (
	"errors"
	"strings"
	"testing"

	"ctrpred"
)

// cli runs ctrsim in-process and returns its exit code and streams.
func cli(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestFaultsImpliesIntegrity pins the CLI contract that -faults arms the
// integrity layer even without -integrity: under the default halt
// policy, an injected bit flip must be *detected* (exit 3, a security
// halt), which can only happen if the hash tree was attached.
func TestFaultsImpliesIntegrity(t *testing.T) {
	code, stdout, stderr := cli(t,
		"-bench", "mcf", "-scheme", "baseline",
		"-instr", "200000", "-footprint", "64K",
		"-faults", "bitflip@fetch:100")
	if code != 3 {
		t.Fatalf("exit = %d, want 3 (security halt)\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "halted") {
		t.Fatalf("stderr does not report the halt: %q", stderr)
	}
	if !strings.Contains(stdout, "attacks injected/detected") {
		t.Fatalf("stdout missing the fault report:\n%s", stdout)
	}
}

// TestFaultsWithQuarantineRecovers is the same attack under -recovery
// quarantine: the run must complete (exit 0) and report the recovery
// counters.
func TestFaultsWithQuarantineRecovers(t *testing.T) {
	code, stdout, stderr := cli(t,
		"-bench", "mcf", "-scheme", "baseline",
		"-instr", "200000", "-footprint", "64K",
		"-faults", "bitflip@fetch:100", "-recovery", "quarantine")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "quarantined/retries/healed") {
		t.Fatalf("stdout missing the recovery report:\n%s", stdout)
	}
}

// TestUnknownRecoveryFailsFast pins that a bad -recovery value is a
// usage error before any simulation runs.
func TestUnknownRecoveryFailsFast(t *testing.T) {
	code, stdout, stderr := cli(t,
		"-bench", "mcf", "-instr", "200000", "-footprint", "64K",
		"-recovery", "pray")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "recovery") {
		t.Fatalf("stderr does not name the bad flag: %q", stderr)
	}
	if strings.Contains(stdout, "benchmark") {
		t.Fatalf("a simulation ran despite the usage error:\n%s", stdout)
	}
}

func TestUnknownModeAndSchemeFailFast(t *testing.T) {
	if code, _, stderr := cli(t, "-mode", "sideways"); code != 2 || !strings.Contains(stderr, "mode") {
		t.Fatalf("bad -mode: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := cli(t, "-scheme", "frob"); code != 2 || !strings.Contains(stderr, "frob") {
		t.Fatalf("bad -scheme: exit %d, stderr %q", code, stderr)
	}
}

// TestUnknownEngineFailsFast: a bad -engine spec exits 2 before any
// simulation runs, and a valid non-default spec is accepted end to end.
func TestUnknownEngineFailsFast(t *testing.T) {
	code, stdout, stderr := cli(t, "-engine", "quantum")
	if code != 2 || !strings.Contains(stderr, "quantum") {
		t.Fatalf("bad -engine: exit %d, stderr %q", code, stderr)
	}
	if strings.Contains(stdout, "benchmark") {
		t.Fatalf("a simulation ran despite the bad engine:\n%s", stdout)
	}
	if code, _, stderr := cli(t, "-engine", "sealer:warp=9"); code != 2 || !strings.Contains(stderr, "warp") {
		t.Fatalf("bad engine parameter: exit %d, stderr %q", code, stderr)
	}
	code, stdout, stderr = cli(t, "-engine", "bipbip",
		"-bench", "mcf", "-instr", "20000", "-footprint", "64K")
	if code != 0 {
		t.Fatalf("bipbip run: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "IPC") {
		t.Fatalf("bipbip run produced no report:\n%s", stdout)
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int{
		"256":  256,
		"4K":   4 << 10,
		"4k":   4 << 10,
		"1M":   1 << 20,
		"16m":  16 << 20,
		"512K": 512 << 10,
	}
	for in, want := range cases {
		got, err := ctrpred.ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "K", "-4K", "0", "abc", "4G"} {
		if _, err := ctrpred.ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) succeeded", bad)
		}
	}
}

func TestParseScheme(t *testing.T) {
	good := map[string]string{
		"baseline":      "baseline",
		"oracle":        "oracle",
		"direct":        "direct",
		"pred-regular":  "pred-regular",
		"pred-twolevel": "pred-two-level",
		"pred-context":  "pred-context",
		"seqcache:128K": "seqcache-128K",
		"combined:32K":  "seqcache-32K+pred-regular",
	}
	for in, wantName := range good {
		s, err := ctrpred.ParseScheme(in)
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", in, err)
			continue
		}
		if s.Name != wantName {
			t.Errorf("ParseScheme(%q).Name = %q, want %q", in, s.Name, wantName)
		}
	}
	for _, bad := range []string{"", "pred", "seqcache:", "seqcache:x", "combined:", "frob"} {
		if _, err := ctrpred.ParseScheme(bad); err == nil {
			t.Errorf("ParseScheme(%q) succeeded", bad)
		}
	}
	// Unparsable specs (other than bad sizes) wrap the sentinel.
	if _, err := ctrpred.ParseScheme("frob"); !errors.Is(err, ctrpred.ErrUnknownScheme) {
		t.Errorf("ParseScheme(\"frob\") = %v, want errors.Is(err, ErrUnknownScheme)", err)
	}
}
