package main

import (
	"errors"
	"testing"

	"ctrpred"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int{
		"256":  256,
		"4K":   4 << 10,
		"4k":   4 << 10,
		"1M":   1 << 20,
		"16m":  16 << 20,
		"512K": 512 << 10,
	}
	for in, want := range cases {
		got, err := ctrpred.ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "K", "-4K", "0", "abc", "4G"} {
		if _, err := ctrpred.ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) succeeded", bad)
		}
	}
}

func TestParseScheme(t *testing.T) {
	good := map[string]string{
		"baseline":      "baseline",
		"oracle":        "oracle",
		"direct":        "direct",
		"pred-regular":  "pred-regular",
		"pred-twolevel": "pred-two-level",
		"pred-context":  "pred-context",
		"seqcache:128K": "seqcache-128K",
		"combined:32K":  "seqcache-32K+pred-regular",
	}
	for in, wantName := range good {
		s, err := ctrpred.ParseScheme(in)
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", in, err)
			continue
		}
		if s.Name != wantName {
			t.Errorf("ParseScheme(%q).Name = %q, want %q", in, s.Name, wantName)
		}
	}
	for _, bad := range []string{"", "pred", "seqcache:", "seqcache:x", "combined:", "frob"} {
		if _, err := ctrpred.ParseScheme(bad); err == nil {
			t.Errorf("ParseScheme(%q) succeeded", bad)
		}
	}
	// Unparsable specs (other than bad sizes) wrap the sentinel.
	if _, err := ctrpred.ParseScheme("frob"); !errors.Is(err, ctrpred.ErrUnknownScheme) {
		t.Errorf("ParseScheme(\"frob\") = %v, want errors.Is(err, ErrUnknownScheme)", err)
	}
}
