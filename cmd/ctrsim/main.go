// Command ctrsim runs one benchmark on the secure-processor simulator
// under a chosen counter-availability scheme and prints its statistics.
//
// Usage:
//
//	ctrsim -bench mcf -scheme pred-context -l2 256K -instr 1000000
//	ctrsim -bench mcf -metrics run.json     # full metrics tree as JSON
//	ctrsim -bench gzip -faults 'bitflip@fetch:100' -recovery quarantine
//	ctrsim -list
//
// Schemes: baseline, oracle, seqcache:<size>, pred-regular,
// pred-twolevel, pred-context, combined:<size> (seq cache + regular
// prediction). Sizes accept K/M suffixes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"ctrpred"
)

func main() {
	var (
		bench   = flag.String("bench", "mcf", "benchmark to run (see -list)")
		scheme  = flag.String("scheme", "pred-regular", "counter scheme: baseline|oracle|direct|seqcache:<size>|pred-regular|pred-twolevel|pred-context|combined:<size>")
		l2      = flag.String("l2", "256K", "L2 size (256K or 1M per the paper; any power of two works)")
		instr   = flag.Uint64("instr", 1_000_000, "instruction budget")
		foot    = flag.String("footprint", "2M", "workload footprint")
		mode    = flag.String("mode", "performance", "performance (IPC) or hitrate (fast functional)")
		seed    = flag.Uint64("seed", 1, "random seed")
		flush   = flag.Uint64("flush", 0, "dirty-flush interval in cycles (0 = instr/10)")
		integ   = flag.Bool("integrity", false, "attach the hash-tree integrity layer")
		faultsF = flag.String("faults", "", "attack plan, e.g. 'bitflip@fetch:100,replay@instr:50000' (implies -integrity)")
		recov   = flag.String("recovery", "halt", "recovery policy on detected tampering: halt|quarantine")
		metrics = flag.String("metrics", "", "write the metrics snapshot to this path (JSON; a .csv suffix selects CSV; '-' = stdout)")
		pprof   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		verbose = flag.Bool("v", false, "print extended statistics")
	)
	flag.Parse()

	if *list {
		for _, b := range ctrpred.BenchmarkCatalog() {
			tags := ""
			if b.MemoryBound {
				tags += " [memory-bound]"
			}
			if b.WriteHeavy {
				tags += " [write-heavy]"
			}
			fmt.Printf("%-9s %s%s\n", b.Name, b.Description, tags)
		}
		return
	}
	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ctrsim: pprof:", err)
			}
		}()
	}

	sch, err := ctrpred.ParseScheme(*scheme)
	if err != nil {
		fatal(err)
	}
	l2Bytes, err := ctrpred.ParseSize(*l2)
	if err != nil {
		fatal(err)
	}
	footBytes, err := ctrpred.ParseSize(*foot)
	if err != nil {
		fatal(err)
	}

	cfg := ctrpred.DefaultConfig(sch).
		WithL2(l2Bytes).
		WithFootprint(footBytes).
		WithInstrBudget(*instr).
		WithSeed(*seed)
	if *mode == "hitrate" {
		cfg = cfg.WithMode(ctrpred.ModeHitRate)
	} else if *mode != "performance" {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if *flush != 0 {
		cfg.Mem.FlushInterval = *flush
	} else {
		cfg.Mem.FlushInterval = *instr / 10
	}
	if *integ || *faultsF != "" {
		cfg = cfg.WithIntegrity()
	}
	if *faultsF != "" {
		plan, err := ctrpred.ParseFaultPlan(*faultsF)
		if err != nil {
			fatal(err)
		}
		cfg = cfg.WithFaults(&plan)
	}
	policy, err := ctrpred.ParseRecovery(*recov)
	if err != nil {
		fatal(err)
	}
	cfg = cfg.WithRecovery(policy)

	res, err := ctrpred.Run(*bench, cfg)
	if err != nil {
		if errors.Is(err, ctrpred.ErrUnknownBenchmark) {
			fatal(fmt.Errorf("%v\nrun 'ctrsim -list' for the benchmark set", err))
		}
		var serr *ctrpred.SecurityError
		if errors.As(err, &serr) {
			// The run halted on a detected security violation: report what
			// was measured up to the halt, then exit distinctly.
			printSecurity(res)
			fmt.Fprintln(os.Stderr, "ctrsim: halted:", serr)
			os.Exit(3)
		}
		fatal(err)
	}

	fmt.Printf("benchmark      %s\n", res.Benchmark)
	fmt.Printf("scheme         %s\n", res.Scheme)
	fmt.Printf("mode           %s\n", res.Mode)
	fmt.Printf("instructions   %d\n", res.CPU.Instructions)
	fmt.Printf("cycles         %d\n", res.CPU.Cycles)
	fmt.Printf("IPC            %.4f\n", res.IPC())
	fmt.Printf("L2 miss rate   %.4f\n", 1-res.L2.HitRate())
	fmt.Printf("mem fetches    %d\n", res.Ctrl.Fetches)
	fmt.Printf("writebacks     %d\n", res.Ctrl.Evictions)
	fmt.Printf("pred rate      %.4f\n", res.PredRate())
	fmt.Printf("seq$ hit rate  %.4f\n", res.SeqHitRate())
	fmt.Printf("pad violations %d\n", res.PadViolations)
	if *verbose {
		fmt.Printf("\n-- detail --\n")
		fmt.Printf("loads/stores/branches  %d/%d/%d\n", res.CPU.Loads, res.CPU.Stores, res.CPU.Branches)
		fmt.Printf("branch mispredicts     %d\n", res.CPU.Mispredicts)
		fmt.Printf("L1D hit rate           %.4f\n", res.L1D.HitRate())
		fmt.Printf("predictions issued     %d\n", res.Pred.Guesses)
		fmt.Printf("root resets/rebases    %d/%d\n", res.Pred.Resets, res.Pred.Rebases)
		fmt.Printf("counter-buffer hits    %d\n", res.Ctrl.CounterBufHits)
		fmt.Printf("engine issued          %v (stall %d)\n", res.Engine.Issued, res.Engine.StallCycles)
		fmt.Printf("DRAM r/w               %d/%d (row hit %d, miss %d, conflict %d)\n",
			res.DRAM.Reads, res.DRAM.Writes, res.DRAM.RowHits, res.DRAM.RowMisses, res.DRAM.RowConflicts)
		fmt.Printf("fetch latency          %s\n", res.Ctrl.FetchLatency)
		fmt.Printf("decrypt exposure       %d cycles total\n", res.Ctrl.DecryptExposed)
		fmt.Printf("flushes (lines)        %d (%d)\n", res.Hierarchy.Flushes, res.Hierarchy.FlushedLines)
	}
	printSecurity(res)
	if *metrics != "" {
		if err := writeMetrics(*metrics, res.Snapshot()); err != nil {
			fatal(err)
		}
	}
}

// printSecurity reports the adversarial side of a run — injected and
// detected attacks, recovery-path counters — when a fault injector was
// armed or security events occurred.
func printSecurity(res ctrpred.Result) {
	if res.Faults != nil {
		fmt.Printf("\n-- faults --\n")
		fmt.Printf("attacks injected/detected  %d/%d\n", res.Faults.TotalInjected(), res.Faults.TotalDetected())
	}
	if res.Security != nil {
		fmt.Printf("tamper detections          %d\n", res.Ctrl.TamperDetected)
		fmt.Printf("quarantined/retries/healed %d/%d/%d\n",
			res.Security.Quarantined, res.Security.Retries, res.Security.Healed)
	}
}

// writeMetrics serializes the snapshot to path: JSON by default, CSV when
// the path ends in .csv, stdout when path is "-".
func writeMetrics(path string, snap *ctrpred.Snapshot) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(path, ".csv") {
		return snap.WriteCSV(w)
	}
	b, err := snap.JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctrsim:", err)
	os.Exit(2)
}
