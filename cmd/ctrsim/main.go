// Command ctrsim runs one benchmark on the secure-processor simulator
// under a chosen counter-availability scheme and prints its statistics.
//
// Usage:
//
//	ctrsim -bench mcf -scheme pred-context -l2 256K -instr 1000000
//	ctrsim -bench mcf -metrics run.json     # full metrics tree as JSON
//	ctrsim -bench gzip -faults 'bitflip@fetch:100' -recovery quarantine
//	ctrsim -tenants gzip,mcf -arrival bursty -quantum 5000
//	ctrsim -list
//
// Schemes: baseline, oracle, seqcache:<size>, pred-regular,
// pred-twolevel, pred-context, combined:<size> (seq cache + regular
// prediction). Sizes accept K/M suffixes. -engine selects the cipher
// engine timing model (aes, aes:lat=48, sealer, sealer:banks=8,
// bipbip); see the README's engine-model table.
//
// -tenants switches to multi-tenant mode: each listed benchmark becomes
// a tenant (own key domain, seeded -seed, -seed+1, …) with the shared
// machine configuration and a per-tenant budget of -instr instructions,
// interleaved by the -arrival process. A -faults plan arms the *last*
// tenant as the adversary (implying -integrity and quarantine recovery
// for it). The report carries per-tenant SLO percentiles, degradation
// and slowdown; -slo-p99 / -slo-slowdown declare bounds to judge them.
//
// Exit codes: 0 clean run, 2 usage or run error, 3 security halt.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"ctrpred"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit code lifted out, so the CLI
// contract — flag validation, implied options, exit codes — is testable
// in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ctrsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench   = fs.String("bench", "mcf", "benchmark to run (see -list)")
		scheme  = fs.String("scheme", "pred-regular", "counter scheme: baseline|oracle|direct|seqcache:<size>|pred-regular|pred-twolevel|pred-context|combined:<size>")
		engine  = fs.String("engine", "aes", "cipher engine model: aes[:lat=N,issue=N]|sealer[:banks=N,lat=N]|bipbip[:lat=N]")
		l2      = fs.String("l2", "256K", "L2 size (256K or 1M per the paper; any power of two works)")
		instr   = fs.Uint64("instr", 1_000_000, "instruction budget")
		foot    = fs.String("footprint", "2M", "workload footprint")
		mode    = fs.String("mode", "performance", "performance (IPC) or hitrate (fast functional)")
		seed    = fs.Uint64("seed", 1, "random seed")
		flush   = fs.Uint64("flush", 0, "dirty-flush interval in cycles (0 = instr/10)")
		integ   = fs.Bool("integrity", false, "attach the hash-tree integrity layer")
		faultsF = fs.String("faults", "", "attack plan, e.g. 'bitflip@fetch:100,replay@instr:50000' (implies -integrity)")
		recov   = fs.String("recovery", "halt", "recovery policy on detected tampering: halt|quarantine")
		metrics = fs.String("metrics", "", "write the metrics snapshot to this path (JSON; a .csv suffix selects CSV; '-' = stdout)")
		tenants = fs.String("tenants", "", "comma-separated benchmarks to run as interleaved tenants (multi-tenant mode; -bench is ignored)")
		arrival = fs.String("arrival", "poisson", "tenancy arrival process: poisson|bursty")
		quantum = fs.Uint64("quantum", 0, "tenancy timeslice cap in instructions (0 = budget/16)")
		retain  = fs.Bool("retain-pred", false, "retain predictor transient state across context switches (save/restore with process context)")
		sloSlow = fs.Float64("slo-slowdown", 0, "tenancy SLO: max end-to-end slowdown vs solo (0 = unconstrained)")
		sloP99  = fs.Float64("slo-p99", 0, "tenancy SLO: max p99 fetch latency in cycles (0 = unconstrained)")
		pprof   = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		list    = fs.Bool("list", false, "list benchmarks and exit")
		verbose = fs.Bool("v", false, "print extended statistics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fatal := func(err error) int {
		fmt.Fprintln(stderr, "ctrsim:", err)
		return 2
	}

	if *list {
		for _, b := range ctrpred.BenchmarkCatalog() {
			tags := ""
			if b.MemoryBound {
				tags += " [memory-bound]"
			}
			if b.WriteHeavy {
				tags += " [write-heavy]"
			}
			fmt.Fprintf(stdout, "%-9s %s%s\n", b.Name, b.Description, tags)
		}
		return 0
	}
	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(stderr, "ctrsim: pprof:", err)
			}
		}()
	}

	sch, err := ctrpred.ParseScheme(*scheme)
	if err != nil {
		return fatal(err)
	}
	eng, err := ctrpred.ParseEngine(*engine)
	if err != nil {
		return fatal(err)
	}
	l2Bytes, err := ctrpred.ParseSize(*l2)
	if err != nil {
		return fatal(err)
	}
	footBytes, err := ctrpred.ParseSize(*foot)
	if err != nil {
		return fatal(err)
	}

	cfg := ctrpred.DefaultConfig(sch).
		WithEngine(eng).
		WithL2(l2Bytes).
		WithFootprint(footBytes).
		WithInstrBudget(*instr).
		WithSeed(*seed)
	if *mode == "hitrate" {
		cfg = cfg.WithMode(ctrpred.ModeHitRate)
	} else if *mode != "performance" {
		return fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	if *tenants != "" {
		// Multi-tenant mode. The flush default stays 0 here: the schedule's
		// context switches drive all eviction traffic, so the interference
		// counters attribute cleanly to switch-in disturbance.
		if *flush != 0 {
			cfg.Mem.FlushInterval = *flush
		}
		if *integ {
			cfg = cfg.WithIntegrity()
		}
		kind, err := ctrpred.ParseArrival(*arrival)
		if err != nil {
			return fatal(err)
		}
		scn := ctrpred.TenancyScenario{
			Kind: kind, Quantum: *quantum, Seed: *seed, RetainPredictor: *retain,
			SLO: ctrpred.TenancySLO{MaxSlowdown: *sloSlow, P99FetchLatency: *sloP99},
		}
		names := strings.Split(*tenants, ",")
		for i, raw := range names {
			name := strings.TrimSpace(raw)
			if name == "" {
				return fatal(fmt.Errorf("empty tenant name in -tenants %q", *tenants))
			}
			tcfg := cfg.WithSeed(*seed + uint64(i))
			if *faultsF != "" && i == len(names)-1 {
				// The last tenant is the adversary: armed with the attack
				// plan, quarantine recovery so its slices complete.
				plan, err := ctrpred.ParseFaultPlan(*faultsF)
				if err != nil {
					return fatal(err)
				}
				tcfg = tcfg.WithIntegrity().WithFaults(&plan).WithRecovery(ctrpred.RecoveryQuarantine)
			}
			scn.Tenants = append(scn.Tenants, ctrpred.TenancyTenant{Bench: name, Config: tcfg})
		}
		rep, err := ctrpred.RunTenancy(context.Background(), scn)
		if err != nil {
			if errors.Is(err, ctrpred.ErrUnknownBenchmark) {
				return fatal(fmt.Errorf("%v\nrun 'ctrsim -list' for the benchmark set", err))
			}
			return fatal(err)
		}
		printTenancy(stdout, rep)
		if *metrics != "" {
			if err := writeMetrics(stdout, *metrics, rep.Snapshot()); err != nil {
				return fatal(err)
			}
		}
		return 0
	}

	if *flush != 0 {
		cfg.Mem.FlushInterval = *flush
	} else {
		cfg.Mem.FlushInterval = *instr / 10
	}
	if *integ || *faultsF != "" {
		cfg = cfg.WithIntegrity()
	}
	if *faultsF != "" {
		plan, err := ctrpred.ParseFaultPlan(*faultsF)
		if err != nil {
			return fatal(err)
		}
		cfg = cfg.WithFaults(&plan)
	}
	policy, err := ctrpred.ParseRecovery(*recov)
	if err != nil {
		return fatal(err)
	}
	cfg = cfg.WithRecovery(policy)

	res, err := ctrpred.Run(*bench, cfg)
	if err != nil {
		if errors.Is(err, ctrpred.ErrUnknownBenchmark) {
			return fatal(fmt.Errorf("%v\nrun 'ctrsim -list' for the benchmark set", err))
		}
		var serr *ctrpred.SecurityError
		if errors.As(err, &serr) {
			// The run halted on a detected security violation: report what
			// was measured up to the halt, then exit distinctly.
			printSecurity(stdout, res)
			fmt.Fprintln(stderr, "ctrsim: halted:", serr)
			return 3
		}
		return fatal(err)
	}

	fmt.Fprintf(stdout, "benchmark      %s\n", res.Benchmark)
	fmt.Fprintf(stdout, "scheme         %s\n", res.Scheme)
	fmt.Fprintf(stdout, "mode           %s\n", res.Mode)
	fmt.Fprintf(stdout, "instructions   %d\n", res.CPU.Instructions)
	fmt.Fprintf(stdout, "cycles         %d\n", res.CPU.Cycles)
	fmt.Fprintf(stdout, "IPC            %.4f\n", res.IPC())
	fmt.Fprintf(stdout, "L2 miss rate   %.4f\n", 1-res.L2.HitRate())
	fmt.Fprintf(stdout, "mem fetches    %d\n", res.Ctrl.Fetches)
	fmt.Fprintf(stdout, "writebacks     %d\n", res.Ctrl.Evictions)
	fmt.Fprintf(stdout, "pred rate      %.4f\n", res.PredRate())
	fmt.Fprintf(stdout, "seq$ hit rate  %.4f\n", res.SeqHitRate())
	fmt.Fprintf(stdout, "pad violations %d\n", res.PadViolations)
	if *verbose {
		fmt.Fprintf(stdout, "\n-- detail --\n")
		fmt.Fprintf(stdout, "loads/stores/branches  %d/%d/%d\n", res.CPU.Loads, res.CPU.Stores, res.CPU.Branches)
		fmt.Fprintf(stdout, "branch mispredicts     %d\n", res.CPU.Mispredicts)
		fmt.Fprintf(stdout, "L1D hit rate           %.4f\n", res.L1D.HitRate())
		fmt.Fprintf(stdout, "predictions issued     %d\n", res.Pred.Guesses)
		fmt.Fprintf(stdout, "root resets/rebases    %d/%d\n", res.Pred.Resets, res.Pred.Rebases)
		fmt.Fprintf(stdout, "counter-buffer hits    %d\n", res.Ctrl.CounterBufHits)
		fmt.Fprintf(stdout, "engine issued          %v (stall %d)\n", res.Engine.Issued, res.Engine.StallCycles)
		fmt.Fprintf(stdout, "DRAM r/w               %d/%d (row hit %d, miss %d, conflict %d)\n",
			res.DRAM.Reads, res.DRAM.Writes, res.DRAM.RowHits, res.DRAM.RowMisses, res.DRAM.RowConflicts)
		fmt.Fprintf(stdout, "fetch latency          %s\n", res.Ctrl.FetchLatency)
		fmt.Fprintf(stdout, "decrypt exposure       %d cycles total\n", res.Ctrl.DecryptExposed)
		fmt.Fprintf(stdout, "flushes (lines)        %d (%d)\n", res.Hierarchy.Flushes, res.Hierarchy.FlushedLines)
	}
	printSecurity(stdout, res)
	if *metrics != "" {
		if err := writeMetrics(stdout, *metrics, res.Snapshot()); err != nil {
			return fatal(err)
		}
	}
	return 0
}

// printTenancy reports a multi-tenant scenario: the aggregate SLO line
// followed by one line per tenant.
func printTenancy(w io.Writer, rep ctrpred.TenancyReport) {
	fmt.Fprintf(w, "tenants            %d\n", len(rep.Tenants))
	fmt.Fprintf(w, "switches/slices    %d/%d\n", rep.Switches, rep.Slices)
	fmt.Fprintf(w, "global cycles      %d\n", rep.GlobalCycles)
	fmt.Fprintf(w, "agg fetch p50/p99  %.0f/%.0f cycles\n", rep.AggP50FetchLatency, rep.AggP99FetchLatency)
	fmt.Fprintf(w, "slowdown mean/max  %.2f/%.2f\n", rep.MeanSlowdown, rep.MaxSlowdown)
	fmt.Fprintf(w, "degradation mean/max %.3f/%.3f\n", rep.MeanDegradation, rep.MaxDegradation)
	fmt.Fprintf(w, "meets SLO          %v\n", rep.MeetsSLO)
	for i, tr := range rep.Tenants {
		slo := ""
		if !tr.MeetsSLO {
			slo = " MISSES-SLO"
		}
		fmt.Fprintf(w, "tenant%02d %-9s ipc=%.4f solo=%.4f deg=%.3f slow=%.2f p50/p99=%.0f/%.0f sw=%d%s\n",
			i, tr.Bench, tr.IPC, tr.SoloIPC, tr.Degradation, tr.Slowdown,
			tr.P50FetchLatency, tr.P99FetchLatency, tr.Switches, slo)
	}
}

// printSecurity reports the adversarial side of a run — injected and
// detected attacks, recovery-path counters — when a fault injector was
// armed or security events occurred.
func printSecurity(w io.Writer, res ctrpred.Result) {
	if res.Faults != nil {
		fmt.Fprintf(w, "\n-- faults --\n")
		fmt.Fprintf(w, "attacks injected/detected  %d/%d\n", res.Faults.TotalInjected(), res.Faults.TotalDetected())
	}
	if res.Security != nil {
		fmt.Fprintf(w, "tamper detections          %d\n", res.Ctrl.TamperDetected)
		fmt.Fprintf(w, "quarantined/retries/healed %d/%d/%d\n",
			res.Security.Quarantined, res.Security.Retries, res.Security.Healed)
	}
}

// writeMetrics serializes the snapshot to path: JSON by default, CSV when
// the path ends in .csv, stdout when path is "-".
func writeMetrics(stdout io.Writer, path string, snap *ctrpred.Snapshot) error {
	var w io.Writer = stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(path, ".csv") {
		return snap.WriteCSV(w)
	}
	b, err := snap.JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
