// Command ctrsim runs one benchmark on the secure-processor simulator
// under a chosen counter-availability scheme and prints its statistics.
//
// Usage:
//
//	ctrsim -bench mcf -scheme pred-context -l2 256K -instr 1000000
//	ctrsim -list
//
// Schemes: baseline, oracle, seqcache:<size>, pred-regular,
// pred-twolevel, pred-context, combined:<size> (seq cache + regular
// prediction). Sizes accept K/M suffixes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ctrpred"
)

func main() {
	var (
		bench   = flag.String("bench", "mcf", "benchmark to run (see -list)")
		scheme  = flag.String("scheme", "pred-regular", "counter scheme: baseline|oracle|direct|seqcache:<size>|pred-regular|pred-twolevel|pred-context|combined:<size>")
		l2      = flag.String("l2", "256K", "L2 size (256K or 1M per the paper; any power of two works)")
		instr   = flag.Uint64("instr", 1_000_000, "instruction budget")
		foot    = flag.String("footprint", "2M", "workload footprint")
		mode    = flag.String("mode", "performance", "performance (IPC) or hitrate (fast functional)")
		seed    = flag.Uint64("seed", 1, "random seed")
		flush   = flag.Uint64("flush", 0, "dirty-flush interval in cycles (0 = instr/10)")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		verbose = flag.Bool("v", false, "print extended statistics")
	)
	flag.Parse()

	if *list {
		for _, b := range ctrpred.BenchmarkCatalog() {
			tags := ""
			if b.MemoryBound {
				tags += " [memory-bound]"
			}
			if b.WriteHeavy {
				tags += " [write-heavy]"
			}
			fmt.Printf("%-9s %s%s\n", b.Name, b.Description, tags)
		}
		return
	}

	sch, err := parseScheme(*scheme)
	if err != nil {
		fatal(err)
	}
	l2Bytes, err := parseSize(*l2)
	if err != nil {
		fatal(err)
	}
	footBytes, err := parseSize(*foot)
	if err != nil {
		fatal(err)
	}

	cfg := ctrpred.DefaultConfig(sch).WithL2(l2Bytes)
	cfg.Scale = ctrpred.Scale{Footprint: footBytes, Instructions: *instr}
	cfg.Seed = *seed
	if *mode == "hitrate" {
		cfg = cfg.WithMode(ctrpred.ModeHitRate)
	} else if *mode != "performance" {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if *flush != 0 {
		cfg.Mem.FlushInterval = *flush
	} else {
		cfg.Mem.FlushInterval = *instr / 10
	}

	res, err := ctrpred.Run(*bench, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("benchmark      %s\n", res.Benchmark)
	fmt.Printf("scheme         %s\n", res.Scheme)
	fmt.Printf("mode           %s\n", res.Mode)
	fmt.Printf("instructions   %d\n", res.CPU.Instructions)
	fmt.Printf("cycles         %d\n", res.CPU.Cycles)
	fmt.Printf("IPC            %.4f\n", res.IPC())
	fmt.Printf("L2 miss rate   %.4f\n", 1-res.L2.HitRate())
	fmt.Printf("mem fetches    %d\n", res.Ctrl.Fetches)
	fmt.Printf("writebacks     %d\n", res.Ctrl.Evictions)
	fmt.Printf("pred rate      %.4f\n", res.PredRate())
	fmt.Printf("seq$ hit rate  %.4f\n", res.SeqHitRate())
	fmt.Printf("pad violations %d\n", res.PadViolations)
	if *verbose {
		fmt.Printf("\n-- detail --\n")
		fmt.Printf("loads/stores/branches  %d/%d/%d\n", res.CPU.Loads, res.CPU.Stores, res.CPU.Branches)
		fmt.Printf("branch mispredicts     %d\n", res.CPU.Mispredicts)
		fmt.Printf("L1D hit rate           %.4f\n", res.L1D.HitRate())
		fmt.Printf("predictions issued     %d\n", res.Pred.Guesses)
		fmt.Printf("root resets/rebases    %d/%d\n", res.Pred.Resets, res.Pred.Rebases)
		fmt.Printf("counter-buffer hits    %d\n", res.Ctrl.CounterBufHits)
		fmt.Printf("engine issued          %v (stall %d)\n", res.Engine.Issued, res.Engine.StallCycles)
		fmt.Printf("DRAM r/w               %d/%d (row hit %d, miss %d, conflict %d)\n",
			res.DRAM.Reads, res.DRAM.Writes, res.DRAM.RowHits, res.DRAM.RowMisses, res.DRAM.RowConflicts)
		fmt.Printf("fetch latency          %s\n", res.Ctrl.FetchLatency)
		fmt.Printf("decrypt exposure       %d cycles total\n", res.Ctrl.DecryptExposed)
		fmt.Printf("flushes (lines)        %d (%d)\n", res.Hierarchy.Flushes, res.Hierarchy.FlushedLines)
	}
}

func parseScheme(s string) (ctrpred.Scheme, error) {
	switch {
	case s == "baseline":
		return ctrpred.SchemeBaseline(), nil
	case s == "oracle":
		return ctrpred.SchemeOracle(), nil
	case s == "direct":
		return ctrpred.SchemeDirect(), nil
	case s == "pred-regular":
		return ctrpred.SchemePred(ctrpred.PredRegular), nil
	case s == "pred-twolevel":
		return ctrpred.SchemePred(ctrpred.PredTwoLevel), nil
	case s == "pred-context":
		return ctrpred.SchemePred(ctrpred.PredContext), nil
	case strings.HasPrefix(s, "seqcache:"):
		n, err := parseSize(strings.TrimPrefix(s, "seqcache:"))
		if err != nil {
			return ctrpred.Scheme{}, err
		}
		return ctrpred.SchemeSeqCache(n), nil
	case strings.HasPrefix(s, "combined:"):
		n, err := parseSize(strings.TrimPrefix(s, "combined:"))
		if err != nil {
			return ctrpred.Scheme{}, err
		}
		return ctrpred.SchemeCombined(n, ctrpred.PredRegular), nil
	}
	return ctrpred.Scheme{}, fmt.Errorf("unknown scheme %q", s)
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctrsim:", err)
	os.Exit(2)
}
