// Command tracegen emits binary memory-reference traces, either from the
// synthetic generators (stream/pointer/zipf/mixed) or recorded live from
// a workload kernel's data references, for replay-based studies.
//
// Usage:
//
//	tracegen -kind zipf -n 100000 -footprint 1M -o trace.bin
//	tracegen -record mcf -n 200000 -o mcf.trace
//	tracegen -kind mixed -n 50000 -o - | wc -c
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ctrpred"
	"ctrpred/internal/trace"
)

func main() {
	var (
		kind   = flag.String("kind", "mixed", "synthetic generator: stream|pointer|zipf|mixed")
		record = flag.String("record", "", "record a workload's data references instead (benchmark name)")
		n      = flag.Int("n", 100_000, "number of references (synthetic) or instructions (record)")
		foot   = flag.String("footprint", "1M", "footprint (K/M suffixes)")
		base   = flag.Uint64("base", 0x100000, "base address (synthetic)")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("o", "-", "output file ('-' = stdout)")
	)
	flag.Parse()

	footBytes, err := ctrpred.ParseSize(*foot)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	tw, err := trace.NewWriter(w)
	if err != nil {
		fatal(err)
	}

	if *record != "" {
		if err := recordWorkload(tw, *record, footBytes, uint64(*n), *seed); err != nil {
			fatal(err)
		}
		if err := tw.Flush(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: recorded %d refs from %s (%d instructions)\n",
			tw.Count(), *record, *n)
		return
	}

	refs, err := trace.Synthetic(trace.Kind(*kind), *n, footBytes, *base, *seed)
	if err != nil {
		fatal(err)
	}
	for _, r := range refs {
		if err := tw.Append(r); err != nil {
			fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d refs (%s over %d bytes)\n", tw.Count(), *kind, footBytes)
}

// recordWorkload runs the benchmark in fast functional mode with a
// reference sink streaming into the trace writer.
func recordWorkload(tw *trace.Writer, bench string, footprint int, instructions, seed uint64) error {
	cfg := ctrpred.DefaultConfig(ctrpred.SchemeBaseline()).
		WithMode(ctrpred.ModeHitRate).
		WithFootprint(footprint).
		WithInstrBudget(instructions).
		WithSeed(seed)
	m, err := ctrpred.NewMachine(bench, cfg)
	if err != nil {
		return err
	}
	var sinkErr error
	m.Sys.SetReferenceSink(func(addr uint64, write bool) {
		if sinkErr == nil {
			sinkErr = tw.Append(trace.Ref{Addr: addr, Write: write})
		}
	})
	m.Run()
	return sinkErr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(2)
}
