// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                         # every experiment, default scale
//	experiments -exp fig7,fig12         # a subset
//	experiments -instr 2000000          # longer windows, tighter numbers
//	experiments -bench mcf,gzip,swim    # a benchmark subset
//	experiments -j 8                    # eight simulations in flight
//	experiments -metrics all.json       # raw series as a metrics tree
//
// Each experiment's benchmark × scheme grid runs across -j workers
// (default: one per CPU); results are assembled in input order, so the
// output is byte-identical to -j 1 for the same seed. Per-simulation
// progress lines go to stderr (suppress with -progress=false).
//
// Ctrl-C cancels cleanly: in-flight simulations stop at their next
// instruction checkpoint and the error reports which grid cells had
// already finished. -simtimeout bounds each individual simulation.
//
// Output is the same row/series layout the paper's figures plot, plus a
// note recording the shape the paper reports.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"ctrpred"
)

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiment ids (table1, fig4, fig7..fig16, ablation, ctxswitch, integrity, hybrid, seqsweep, valuepred, attack, engines, tenants, capacity) or 'all'")
		engine   = flag.String("engine", "aes", "cipher engine model every simulation runs under: aes[:lat=N,issue=N]|sealer[:banks=N,lat=N]|bipbip[:lat=N] (ignored by the 'engines' experiment, which sweeps them)")
		instr    = flag.Uint64("instr", 0, "per-run instruction budget (0 = default)")
		foot     = flag.String("footprint", "", "workload footprint with optional K/M suffix, e.g. 8M (empty = default)")
		bench    = flag.String("bench", "", "comma-separated benchmark subset (default: all 14)")
		seed     = flag.Uint64("seed", 1, "random seed")
		jobs     = flag.Int("j", 0, "concurrent simulations per sweep (0 = one per CPU)")
		timeout  = flag.Duration("simtimeout", 0, "per-simulation deadline (0 = none), e.g. 30s")
		metrics  = flag.String("metrics", "", "write every experiment's metrics snapshot to this path (JSON; a .csv suffix selects CSV; '-' = stdout)")
		arrival  = flag.String("arrival", "poisson", "tenancy experiments' arrival process: poisson|bursty")
		maxTen   = flag.Int("maxtenants", 0, "capacity experiment's search ceiling (0 = default 8)")
		sloSlow  = flag.Float64("slo-slowdown", 0, "capacity SLO: max end-to-end slowdown vs solo (0 = default 8)")
		sloP99   = flag.Float64("slo-p99", 0, "capacity SLO: max p99 fetch latency in cycles (0 = unconstrained)")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		progress = flag.Bool("progress", true, "print per-simulation progress/timing lines to stderr")
	)
	flag.Parse()

	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: pprof:", err)
			}
		}()
	}

	opt := ctrpred.DefaultOptions()
	opt.Seed = *seed
	opt.Workers = *jobs
	opt.SimTimeout = *timeout
	eng, err := ctrpred.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	opt.Engine = eng
	kind, err := ctrpred.ParseArrival(*arrival)
	if err != nil {
		fatal(err)
	}
	opt.Arrival = kind
	opt.MaxTenants = *maxTen
	opt.SLOMaxSlowdown = *sloSlow
	opt.SLOP99Fetch = *sloP99
	if *instr != 0 {
		opt.Scale.Instructions = *instr
	}
	if *foot != "" {
		bytes, err := ctrpred.ParseSize(*foot)
		if err != nil {
			fatal(err)
		}
		opt.Scale.Footprint = bytes
	}
	if *bench != "" {
		benchmarks, err := splitValidated(*bench, ctrpred.Benchmarks(), "benchmark")
		if err != nil {
			fatal(err)
		}
		opt.Benchmarks = benchmarks
	}
	if *progress {
		opt.Progress = func(u ctrpred.RunUpdate) {
			status := "ok"
			if u.Err != nil {
				status = "FAIL: " + u.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%.2fs) %s\n",
				u.Done, u.Total, u.Label, u.Elapsed.Seconds(), status)
		}
	}

	ids := ctrpred.ExperimentIDs()
	if *exps != "all" {
		var err error
		ids, err = splitValidated(*exps, ctrpred.ExperimentIDs(), "experiment")
		if err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	root := ctrpred.Snapshot{Name: "experiments"}
	for _, id := range ids {
		start := time.Now()
		res, err := ctrpred.RunExperimentContext(ctx, id, opt)
		if err != nil {
			var pe *ctrpred.PartialError
			if errors.As(err, &pe) {
				fmt.Fprintf(os.Stderr, "experiments: %s interrupted: %v\n", id, pe.Cause)
				fmt.Fprintf(os.Stderr, "  %d/%d simulations had finished\n", len(pe.Completed), pe.Total)
			}
			fatal(err)
		}
		fmt.Println(res.Table)
		if res.Notes != "" {
			fmt.Printf("paper shape: %s\n", res.Notes)
		}
		fmt.Printf("(%s regenerated in %.1fs)\n\n", res.ID, time.Since(start).Seconds())
		if *metrics != "" {
			root.Children = append(root.Children, res.Snapshot())
		}
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, &root); err != nil {
			fatal(err)
		}
	}
}

// writeMetrics serializes the snapshot to path: JSON by default, CSV when
// the path ends in .csv, stdout when path is "-".
func writeMetrics(path string, snap *ctrpred.Snapshot) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(path, ".csv") {
		return snap.WriteCSV(w)
	}
	b, err := snap.JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// splitValidated splits a comma-separated flag value, trims whitespace,
// and rejects any entry not in the valid set — up front, with the valid
// names in the error, instead of deep inside a run.
func splitValidated(list string, valid []string, kind string) ([]string, error) {
	ok := make(map[string]bool, len(valid))
	for _, v := range valid {
		ok[v] = true
	}
	var out []string
	for _, raw := range strings.Split(list, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		if !ok[name] {
			return nil, fmt.Errorf("unknown %s %q (valid: %s)", kind, name, strings.Join(valid, ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no %ss given", kind)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(2)
}
