// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                         # every experiment, default scale
//	experiments -exp fig7,fig12         # a subset
//	experiments -instr 2000000          # longer windows, tighter numbers
//	experiments -bench mcf,gzip,swim    # a benchmark subset
//
// Output is the same row/series layout the paper's figures plot, plus a
// note recording the shape the paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ctrpred"
)

func main() {
	var (
		exps  = flag.String("exp", "all", "comma-separated experiment ids (table1, fig4, fig7..fig16, ablation, ctxswitch, integrity, hybrid, seqsweep, valuepred) or 'all'")
		instr = flag.Uint64("instr", 0, "per-run instruction budget (0 = default)")
		foot  = flag.Int("footprint", 0, "workload footprint in bytes (0 = default)")
		bench = flag.String("bench", "", "comma-separated benchmark subset (default: all 14)")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	opt := ctrpred.DefaultOptions()
	opt.Seed = *seed
	if *instr != 0 {
		opt.Scale.Instructions = *instr
	}
	if *foot != 0 {
		opt.Scale.Footprint = *foot
	}
	if *bench != "" {
		opt.Benchmarks = strings.Split(*bench, ",")
	}

	ids := ctrpred.ExperimentIDs()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}

	for _, id := range ids {
		start := time.Now()
		res, err := ctrpred.RunExperiment(strings.TrimSpace(id), opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		fmt.Println(res.Table)
		if res.Notes != "" {
			fmt.Printf("paper shape: %s\n", res.Notes)
		}
		fmt.Printf("(%s regenerated in %.1fs)\n\n", res.ID, time.Since(start).Seconds())
	}
}
