// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end,
// prints the regenerated table once, and reports the figure's headline
// numbers as custom metrics so `go test -bench` output records them.
//
// Scale: each iteration uses a reduced instruction window so the full
// suite completes in minutes. cmd/experiments exposes the same figures
// with adjustable -instr/-footprint for longer runs.
package ctrpred

import (
	"fmt"
	"sync"
	"testing"
)

// benchOptions is the per-figure budget used by the benchmarks.
func benchOptions() ExperimentOptions {
	opt := DefaultOptions()
	// Keep the default (paper-scale) footprint; trim the instruction
	// window so the whole suite completes in minutes.
	opt.Scale.Instructions = 100_000
	return opt
}

var printOnce sync.Map

// printTable shows the regenerated table once per figure, only under
// `go test -v`, and only after stopping the benchmark timer: table
// rendering must neither pollute the timed region nor break tools
// (benchstat, cmd/benchjson) that parse the benchmark output lines.
func printTable(b *testing.B, id string, res ExperimentResult) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(id, true); done || !testing.Verbose() {
		return
	}
	b.StopTimer()
	defer b.StartTimer()
	fmt.Printf("\n%s\n", res.Table)
	if res.Notes != "" {
		fmt.Printf("paper shape: %s\n", res.Notes)
	}
}

// runFigure executes the experiment, prints its table (once per figure,
// verbose runs only), and returns the result for metric extraction.
// runFigure times regenerating one figure. An untimed warm-up
// regeneration builds the process-wide machine templates its grid
// needs, so the timed iterations measure the steady-state per-cell
// cost — what each further sweep or service request pays — not the
// one-time template construction.
func runFigure(b *testing.B, id string) ExperimentResult {
	b.Helper()
	if _, err := RunExperiment(id, benchOptions()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = RunExperiment(id, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable(b, id, res)
	return res
}

func reportSeries(b *testing.B, res ExperimentResult, series ...string) {
	for _, s := range series {
		if vals, ok := res.Series[s]; ok {
			b.ReportMetric(vals["Average"], s+"_avg")
		}
	}
}

// BenchmarkTable1Config renders Table 1 (processor model parameters).
func BenchmarkTable1Config(b *testing.B) {
	runFigure(b, "table1")
}

// BenchmarkFigure4Timeline measures the single-miss latency of the four
// Figure 4 timelines (baseline, warm seq cache, prediction, oracle).
func BenchmarkFigure4Timeline(b *testing.B) {
	res := runFigure(b, "fig4")
	b.ReportMetric(res.Series["baseline"]["data_ready"], "baseline_cycles")
	b.ReportMetric(res.Series["otp-prediction"]["data_ready"], "pred_cycles")
	b.ReportMetric(res.Series["oracle"]["data_ready"], "oracle_cycles")
}

// BenchmarkFigure7HitRates256K regenerates Figure 7: sequence-number hit
// rates of 128K/512K caches vs OTP prediction with a 256 KB L2.
func BenchmarkFigure7HitRates256K(b *testing.B) {
	res := runFigure(b, "fig7")
	reportSeries(b, res, "Pred", "128K_Seq#_Cache", "512K_Seq#_Cache")
}

// BenchmarkFigure8HitRates1M regenerates Figure 8 (1 MB L2).
func BenchmarkFigure8HitRates1M(b *testing.B) {
	res := runFigure(b, "fig8")
	reportSeries(b, res, "Pred", "128K_Seq#_Cache", "512K_Seq#_Cache")
}

// BenchmarkFigure9Breakdown regenerates Figure 9: the coverage breakdown
// of a 32 KB sequence-number cache combined with prediction.
func BenchmarkFigure9Breakdown(b *testing.B) {
	res := runFigure(b, "fig9")
	reportSeries(b, res, "Pred_Hit", "Seq_Only", "Both_Hit")
}

// BenchmarkFigure10IPC256K regenerates Figure 10: normalized IPC of
// 4K/128K/512K sequence-number caches vs prediction, 256 KB L2.
func BenchmarkFigure10IPC256K(b *testing.B) {
	res := runFigure(b, "fig10")
	reportSeries(b, res, "Pred", "Seq_Cache_4K", "Seq_Cache_512K")
}

// BenchmarkFigure11IPC1M regenerates Figure 11 (1 MB L2).
func BenchmarkFigure11IPC1M(b *testing.B) {
	res := runFigure(b, "fig11")
	reportSeries(b, res, "Pred", "Seq_Cache_4K", "Seq_Cache_512K")
}

// BenchmarkFigure12OptHitRates256K regenerates Figure 12: regular vs
// two-level vs context-based prediction rates, 256 KB L2.
func BenchmarkFigure12OptHitRates256K(b *testing.B) {
	res := runFigure(b, "fig12")
	reportSeries(b, res, "Regular", "Two-level", "Context")
}

// BenchmarkFigure13OptHitRates1M regenerates Figure 13 (1 MB L2).
func BenchmarkFigure13OptHitRates1M(b *testing.B) {
	res := runFigure(b, "fig13")
	reportSeries(b, res, "Regular", "Two-level", "Context")
}

// BenchmarkFigure14PredictionCounts regenerates Figure 14: the number of
// speculative pads issued under 256 KB vs 1 MB L2s.
func BenchmarkFigure14PredictionCounts(b *testing.B) {
	res := runFigure(b, "fig14")
	reportSeries(b, res, "256KB_L2", "1MB_L2")
}

// BenchmarkFigure15OptIPC256K regenerates Figure 15: normalized IPC of
// the optimized predictors, 256 KB L2.
func BenchmarkFigure15OptIPC256K(b *testing.B) {
	res := runFigure(b, "fig15")
	reportSeries(b, res, "Regular", "Two-level", "Context")
}

// BenchmarkFigure16OptIPC1M regenerates Figure 16 (1 MB L2).
func BenchmarkFigure16OptIPC1M(b *testing.B) {
	res := runFigure(b, "fig16")
	reportSeries(b, res, "Regular", "Two-level", "Context")
}

// BenchmarkAblationParameters sweeps the predictor design parameters the
// paper discusses (adaptivity, depth, history, threshold, swing).
func BenchmarkAblationParameters(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"bzip2", "gzip", "mcf", "swim", "twolf"}
	var res ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = RunExperiment("ablation", opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable(b, "ablation", res)
	b.ReportMetric(res.Series["pred_rate"]["regular (default)"], "adaptive_rate")
	b.ReportMetric(res.Series["pred_rate"]["non-adaptive"], "nonadaptive_rate")
}

// BenchmarkSingleRunMcfContext is a microbenchmark of simulator speed
// itself: simulated instructions per second on the heaviest predictor.
// One untimed warm-up run builds the process-wide (benchmark, scale,
// seed) template, so the timed iterations measure the steady-state
// per-run cost — what a sweep pays per cell — not the one-time
// template construction.
func BenchmarkSingleRunMcfContext(b *testing.B) {
	cfg := DefaultConfig(SchemePred(PredContext))
	cfg.Scale = Scale{Footprint: 1 << 20, Instructions: 50_000}
	if _, err := Run("mcf", cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := Run("mcf", cfg)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.CPU.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim_instrs/s")
}

// BenchmarkSingleRunMcfEngineBipBip is BenchmarkSingleRunMcfContext on
// the bipbip engine model: same workload and scheme, near-free
// decryption. It prices the EngineModel interface dispatch on a
// non-default model and tracks the alternative-engine path's throughput
// in BENCH_sim.json.
func BenchmarkSingleRunMcfEngineBipBip(b *testing.B) {
	eng, err := ParseEngine("bipbip")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(SchemePred(PredContext)).WithEngine(eng)
	cfg.Scale = Scale{Footprint: 1 << 20, Instructions: 50_000}
	if _, err := Run("mcf", cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := Run("mcf", cfg)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.CPU.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim_instrs/s")
}

// BenchmarkSingleRunMcfFaultsArmed is BenchmarkSingleRunMcfContext with
// the fault injector armed on a trigger that never fires: it prices the
// injector's per-fetch bookkeeping (pair capture + trigger evaluation)
// on a clean run. Compare sim_instrs/s against BenchmarkSingleRunMcfContext
// in BENCH_sim.json — the armed-but-idle overhead budget is ≤1%.
func BenchmarkSingleRunMcfFaultsArmed(b *testing.B) {
	cfg := DefaultConfig(SchemePred(PredContext))
	cfg.Scale = Scale{Footprint: 1 << 20, Instructions: 50_000}
	plan := &FaultPlan{Attacks: []FaultAttack{{
		Kind:    FaultBitFlip,
		Trigger: FaultTrigger{Fetch: 1 << 60}, // armed, never due
	}}}
	cfg = cfg.WithFaults(plan)
	if _, err := Run("mcf", cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := Run("mcf", cfg)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.CPU.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim_instrs/s")
}

// BenchmarkAttackCampaign runs the adversarial detection-coverage
// matrix: every attack class against every scheme family with the
// integrity tree enabled and quarantine recovery. The experiment fails
// (and so does the benchmark) unless detection is total and clean runs
// raise zero security events.
func BenchmarkAttackCampaign(b *testing.B) {
	opt := benchOptions()
	var res ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = RunExperiment("attack", opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable(b, "attack", res)
	b.ReportMetric(res.Series["baseline"]["bitflip"], "bitflip_detect_rate")
	b.ReportMetric(res.Series["baseline"]["replay"], "replay_detect_rate")
	b.ReportMetric(res.Series["latency:baseline"]["bitflip"], "bitflip_latency_cycles")
}

// BenchmarkContextSwitch measures the Section 2.2 multiprogramming
// asymmetry: counter caches are gutted by context switches, prediction
// state travels with the process.
func BenchmarkContextSwitch(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"mcf", "vpr", "vortex"}
	var res ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = RunExperiment("ctxswitch", opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable(b, "ctxswitch", res)
	b.ReportMetric(res.Series["seqcache-128K"]["window/128"], "cache_cov_fastswitch")
	b.ReportMetric(res.Series["pred-regular"]["window/128"], "pred_cov_fastswitch")
}

// BenchmarkIntegrityOverhead measures the IPC cost of the hash-tree
// authentication the paper assumes alongside counter-mode encryption.
func BenchmarkIntegrityOverhead(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"mcf", "swim", "gcc"}
	var res ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = RunExperiment("integrity", opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable(b, "integrity", res)
	b.ReportMetric(res.Series["normalized_ipc"]["pred-regular"], "pred_tree_ipc_ratio")
	b.ReportMetric(res.Series["normalized_ipc"]["baseline"], "baseline_tree_ipc_ratio")
}

// BenchmarkSeqCacheSweep regenerates the Section 2.2 motivating claim:
// counter-cache hit rate plateaus with size.
func BenchmarkSeqCacheSweep(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"mcf", "vpr", "vortex", "gcc"}
	var res ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = RunExperiment("seqsweep", opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable(b, "seqsweep", res)
	b.ReportMetric(res.Series["hit_rate"]["128KB"], "cache128K_rate")
	b.ReportMetric(res.Series["hit_rate"]["prediction (0KB)"], "pred_rate")
}

// BenchmarkHybridPrefetch regenerates the Section 9.2 composition of
// prediction with pre-decryption prefetch.
func BenchmarkHybridPrefetch(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"mcf", "swim", "art"}
	var res ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = RunExperiment("hybrid", opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable(b, "hybrid", res)
	b.ReportMetric(res.Series["normalized_ipc"]["hybrid"], "hybrid_ipc")
	b.ReportMetric(res.Series["normalized_ipc"]["prediction-only"], "pred_ipc")
}

// BenchmarkTenants runs the multi-tenant interference matrix: each
// benchmark solo, mixed against a background tenant on a seeded
// arrival schedule, with retained predictor state, and against an
// adversarial co-tenant. Headline metrics: clean-mix and adversarial
// slowdown in global virtual time.
func BenchmarkTenants(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"gzip", "mcf"}
	opt.Scale.Instructions = 20_000
	var res ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = RunExperiment("tenants", opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable(b, "tenants", res)
	b.ReportMetric(res.Series["Mix_Slowdown"]["Average"], "mix_slowdown_avg")
	b.ReportMetric(res.Series["Adv_Slowdown"]["Average"], "adv_slowdown_avg")
}

// BenchmarkCapacity runs the capacity-planning search: the largest
// co-tenant count per scheme that still meets a slowdown ≤ 8 SLO.
func BenchmarkCapacity(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"gzip", "mcf"}
	opt.Scale.Instructions = 20_000
	opt.MaxTenants = 6
	opt.SLOMaxSlowdown = 8
	var res ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = RunExperiment("capacity", opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable(b, "capacity", res)
	b.ReportMetric(res.Series["Combined_32K"]["Average"], "combined_capacity_avg")
	b.ReportMetric(res.Series["Pred"]["Average"], "pred_capacity_avg")
}

// BenchmarkValuePrediction regenerates the Section 9.3 comparison with
// load-value prediction.
func BenchmarkValuePrediction(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"mcf", "gcc"}
	var res ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = RunExperiment("valuepred", opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable(b, "valuepred", res)
	b.ReportMetric(res.Series["normalized_ipc"]["lvp-only"], "lvp_ipc")
	b.ReportMetric(res.Series["normalized_ipc"]["otp-pred-only"], "otp_ipc")
}
