// Tracereplay: trace-driven use of the library. Generates a synthetic
// memory-reference trace (as cmd/tracegen would), round-trips it through
// the binary trace format, and replays it against hierarchies with
// different sequence-number cache sizes to reproduce the "plateau effect"
// the paper attributes to counter working sets (Section 2.2).
package main

import (
	"bytes"
	"fmt"
	"log"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/ctr"
	"ctrpred/internal/dram"
	"ctrpred/internal/mem"
	"ctrpred/internal/memsys"
	"ctrpred/internal/predictor"
	"ctrpred/internal/secmem"
	"ctrpred/internal/seqcache"
	"ctrpred/internal/trace"
)

func main() {
	// A pointer-chasing trace over 4 MB: large counter working set.
	refs, err := trace.Synthetic(trace.KindPointer, 200_000, 4<<20, 0x100000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Round-trip through the on-disk format.
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range refs {
		if err := w.Append(r); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d refs, %d bytes encoded\n\n", w.Count(), buf.Len())

	fmt.Printf("%-14s %16s %16s\n", "seq cache", "seq$ hit rate", "counter covered")
	for _, size := range []int{4 << 10, 32 << 10, 128 << 10, 512 << 10} {
		rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatal(err)
		}
		sys := buildSystem(size)
		if _, err := trace.ReplayReader(rd, sys); err != nil {
			log.Fatal(err)
		}
		st := sys.Controller().Stats()
		hitRate := float64(st.SeqCacheHits) / float64(st.Fetches)
		fmt.Printf("%10d KB %15.1f%% %15.1f%%\n",
			size>>10, 100*hitRate, 100*st.CounterCoverage())
	}
	fmt.Println("\nHit rate climbs slowly with size — the plateau that makes")
	fmt.Println("counter caching area-inefficient and motivates prediction.")
}

func buildSystem(seqCacheBytes int) *memsys.System {
	var key [32]byte
	key[0] = 0x42
	image := mem.New()
	d := dram.New(dram.DefaultConfig())
	e := cryptoengine.New(cryptoengine.DefaultConfig(), ctr.NewKeystream(key))
	p := predictor.New(predictor.DefaultConfig(predictor.SchemeNone))
	sc := seqcache.New(seqCacheBytes)
	ctrl := secmem.New(secmem.DefaultConfig(), d, e, p, sc, image)
	cfg := memsys.DefaultConfig()
	cfg.FlushInterval = 0
	return memsys.New(cfg, ctrl)
}
