// Predictors: compare every counter-availability scheme of the paper on
// one write-heavy benchmark — sequence-number caches of three sizes, the
// three prediction schemes, their combination, and the oracle — printing
// a small league table of counter coverage and normalized IPC.
package main

import (
	"fmt"
	"log"

	"ctrpred"
)

func main() {
	const bench = "twolf" // scattered rewrites: hard for everything

	schemes := []ctrpred.Scheme{
		ctrpred.SchemeDirect(),
		ctrpred.SchemeBaseline(),
		ctrpred.SchemeSeqCache(4 << 10),
		ctrpred.SchemeSeqCache(128 << 10),
		ctrpred.SchemeSeqCache(512 << 10),
		ctrpred.SchemePred(ctrpred.PredRegular),
		ctrpred.SchemePred(ctrpred.PredTwoLevel),
		ctrpred.SchemePred(ctrpred.PredContext),
		ctrpred.SchemeCombined(32<<10, ctrpred.PredRegular),
		ctrpred.SchemeOracle(),
	}

	base := ctrpred.DefaultConfig(ctrpred.SchemeOracle())
	base.Scale = ctrpred.Scale{Footprint: 4 << 20, Instructions: 200_000}

	oracle, err := ctrpred.Run(bench, base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s, %d instructions, oracle IPC %.4f\n\n",
		bench, oracle.CPU.Instructions, oracle.IPC())
	fmt.Printf("%-26s %12s %12s %14s\n", "scheme", "pred rate", "seq$ rate", "IPC vs oracle")
	for _, sch := range schemes {
		cfg := base
		cfg.Scheme = sch
		res, err := ctrpred.Run(bench, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %11.1f%% %11.1f%% %13.1f%%\n",
			sch.Name, 100*res.PredRate(), 100*res.SeqHitRate(),
			100*res.IPC()/oracle.IPC())
	}

	fmt.Println("\nThe paper's ordering: prediction approaches the oracle with")
	fmt.Println("negligible area, beating even a 512 KB counter cache; the")
	fmt.Println("optimized predictors recover the counters prediction misses.")
}
