// Enclave: a close-up of the security machinery. Builds a machine by
// hand, runs a program whose code and data live in encrypted RAM, and
// then plays the adversary: reads the off-chip ciphertext directly,
// watches a frequently rewritten line's counter advance (and its
// ciphertext change) across writebacks, and confirms pads are never
// reused.
package main

import (
	"fmt"
	"log"

	"ctrpred"
)

func main() {
	cfg := ctrpred.DefaultConfig(ctrpred.SchemePred(ctrpred.PredRegular))
	cfg.Scale = ctrpred.Scale{Footprint: 256 << 10, Instructions: 100_000}
	// A small L2 forces real evictions, so lines round-trip through
	// encrypted RAM many times.
	cfg.Mem.L2Size = 16 << 10

	m, err := ctrpred.NewMachine("gzip", cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Plant a recognizable secret in gzip's (read-only) input stream, and
	// pick a line in its sliding window — the region the kernel rewrites
	// constantly.
	const secretAddr = 0x100040          // input region: value must survive
	const windowAddr = 0x100000 + 0x40040 // window region: counter must churn
	m.Image.Store(secretAddr, 8, 0xdeadbeefcafef00d)

	winSeq0 := m.Ctrl.Seq(windowAddr)
	winEnc0 := m.Ctrl.EncryptedLine(windowAddr)
	fmt.Printf("window line before: counter offset %d from page root\n",
		winSeq0-m.Pred.Root(windowAddr))
	fmt.Printf("window ciphertext : %x...\n", winEnc0[:16])
	secretEnc := m.Ctrl.EncryptedLine(secretAddr)
	fmt.Printf("secret ciphertext : %x...  (plaintext %#x)\n\n",
		secretEnc[:16], uint64(0xdeadbeefcafef00d))

	res := m.Run()

	fmt.Printf("ran %d instructions; %d encrypted fetches, %d writebacks\n",
		res.CPU.Instructions, res.Ctrl.Fetches, res.Ctrl.Evictions)
	fmt.Printf("root resets: %d, counter re-bases: %d\n\n", res.Pred.Resets, res.Pred.Rebases)

	// The secret is intact inside the boundary…
	if got := m.Image.Load(secretAddr, 8); got != 0xdeadbeefcafef00d {
		log.Fatalf("secret corrupted: %#x", got)
	}
	fmt.Printf("secret readable inside the boundary: %#x\n", m.Image.Load(secretAddr, 8))

	// …while the adversary's view of the churned window line changed with
	// every writeback.
	winSeq1 := m.Ctrl.Seq(windowAddr)
	winEnc1 := m.Ctrl.EncryptedLine(windowAddr)
	fmt.Printf("window line after : counter moved %d times\n", seqDelta(winSeq0, winSeq1))
	fmt.Printf("window ciphertext : %x...\n", winEnc1[:16])
	if winSeq1 == winSeq0 {
		log.Fatal("window line was never written back — demo misconfigured")
	}
	if winEnc1 == winEnc0 {
		log.Fatal("counter advanced but ciphertext unchanged — pad reuse!")
	}

	// The self-check tracked every (address, counter) pair used for
	// encryption across the whole run.
	fmt.Printf("\none-time-pad reuse across %d encryptions: %d (must be 0)\n",
		res.Ctrl.Evictions, res.PadViolations)
	if res.PadViolations != 0 {
		log.Fatal("pad reuse detected")
	}
	fmt.Println("counter-mode invariant held: every writeback used a fresh pad")
}

// seqDelta reports how far the counter moved, tolerating re-bases onto a
// fresh random root (which make the raw difference meaningless).
func seqDelta(before, after uint64) uint64 {
	d := after - before
	if d > 1<<32 {
		return 1 // re-based at least once
	}
	return d
}
