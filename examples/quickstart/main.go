// Quickstart: run one benchmark on the secure-processor simulator and
// print the headline numbers — how often the counter of a missing cache
// line was predicted, and the IPC cost of memory encryption relative to
// an oracle that always knows the counter.
package main

import (
	"fmt"
	"log"

	"ctrpred"
)

func main() {
	// Table 1 machine, 256 KB L2, context-based OTP prediction.
	cfg := ctrpred.DefaultConfig(ctrpred.SchemePred(ctrpred.PredContext))
	cfg.Scale = ctrpred.Scale{Footprint: 4 << 20, Instructions: 200_000}

	res, err := ctrpred.Run("mcf", cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== mcf under context-based OTP prediction ==")
	fmt.Printf("instructions        %d\n", res.CPU.Instructions)
	fmt.Printf("cycles              %d\n", res.CPU.Cycles)
	fmt.Printf("IPC                 %.4f\n", res.IPC())
	fmt.Printf("L2-miss fetches     %d\n", res.Ctrl.Fetches)
	fmt.Printf("counter predicted   %.1f%% of fetches\n", 100*res.PredRate())
	fmt.Printf("pad reuse detected  %d (must be 0)\n", res.PadViolations)

	// The same machine with no counter mechanism at all (baseline), and
	// with the oracle, bound the design space.
	for _, sch := range []ctrpred.Scheme{ctrpred.SchemeBaseline(), ctrpred.SchemeOracle()} {
		c := cfg
		c.Scheme = sch
		r, err := ctrpred.Run("mcf", c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s IPC         %.4f\n", sch.Name, r.IPC())
	}
	fmt.Println()
	fmt.Println("Prediction hides the AES pad latency behind the line fetch:")
	fmt.Println("its IPC should sit near the oracle, well above the baseline.")
}
