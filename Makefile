# Verification recipe. `make verify` is the tier-1 gate: build, vet,
# the full test suite, and a race-detector pass over the concurrent
# packages (the run scheduler and the sweeps routed through it).

GO ?= go

.PHONY: build vet test race verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiments race run is restricted to the tests that exercise the
# worker pool; a full -race suite multiplies the 40 s experiment tests
# several-fold for no extra concurrency coverage.
race:
	$(GO) test -race ./internal/runpool
	$(GO) test -race ./internal/experiments -run 'Parallel|SweepProgress|SweepError|SweepCancel|SweepPreCancelled|SimTimeout'

verify: build vet test race
