# Verification recipe. `make verify` is the tier-1 gate: build, vet,
# the full test suite, a race-detector pass over the concurrent
# packages (the run scheduler and the sweeps routed through it) plus
# the fault-injection/recovery datapath, and a short fuzz smoke of the
# integrity tree.
#
# `make bench` runs the benchmark suite once and appends a labeled entry
# to the tracked ledger BENCH_sim.json (label via BENCH_LABEL=...), so
# perf changes land with their before/after numbers. benchjson refuses a
# label the ledger already holds (re-record deliberately with
# BENCH_FLAGS=-force) and prints non-blocking warnings for metrics that
# regressed >10% against the previous entry. See EXPERIMENTS.md for the
# profiling workflow built on top of it.

GO ?= go
BENCH_LABEL ?= local
BENCH_FLAGS ?=

.PHONY: build vet test race fuzz smoke loadtest-smoke loadtest chaos-smoke chaos capacity-smoke verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiments race run is restricted to the tests that exercise the
# worker pool; a full -race suite multiplies the 40 s experiment tests
# several-fold for no extra concurrency coverage. cryptoengine rides
# along (it is cheap) so the engine-model conformance suite runs under
# the race detector too — engine models are shared state inside every
# concurrently-run machine of a sweep.
race:
	$(GO) test -race ./internal/runpool ./internal/server ./internal/cryptoengine ./internal/cluster ./internal/chaos ./internal/tenancy
	$(GO) test -race ./internal/experiments -run 'Parallel|SweepProgress|SweepError|SweepCancel|SweepPreCancelled|SimTimeout|EnginesDeterministic|TenantsDeterministic'
	$(GO) test -race ./internal/faults ./internal/secmem
	$(GO) test -race ./internal/sim -run 'Tamper|Replay|Halt|CleanRunWithArmed|RunContextCancel'

# Boot the job server on an ephemeral port, push one simulation through
# the full HTTP path (streamed NDJSON, then a cache-hit repeat), and
# exit non-zero on any mismatch. This is the CI boot check.
smoke:
	$(GO) run ./cmd/ctrpredd -smoke -workers 2

# Boot a 2-worker cluster behind a coordinator in-process, drive it
# with concurrent streaming clients through cold/warm/verify phases,
# and assert byte-identity with single-node plus a >=95% warm-cache
# ratio. The cluster-mode analogue of the daemon smoke above.
loadtest-smoke:
	$(GO) run ./cmd/loadtest -smoke

# The full cluster load report (1/2/4 workers), appended to the ledger.
loadtest:
	$(GO) run ./cmd/loadtest -nodes 1,2,4 -requests 8 -seeds 8 -clients 8 -bench \
		| grep '^Benchmark' \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' $(BENCH_FLAGS) -o BENCH_sim.json

# The chaos analogue of loadtest-smoke: the same 2-worker cluster and
# byte-identity assertions, but every coordinator->worker connection
# runs through internal/chaos's fault-injecting transport. The clients
# must still see only clean, identical answers.
chaos-smoke:
	$(GO) run ./cmd/loadtest -smoke -chaos 'latency:p=0.1,ms=50;err:p=0.1,status=503;corrupt:p=0.05' -chaos-seed 7

# The full chaos load report, appended to the ledger under its own
# benchmark family (resilience overhead, not clean-path throughput).
chaos:
	$(GO) run ./cmd/loadtest -nodes 1,2,4 -requests 8 -seeds 8 -clients 8 -bench \
		-chaos 'latency:p=0.1,ms=50;err:p=0.1,status=503;corrupt:p=0.05' -chaos-seed 7 \
		| grep '^Benchmark' \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' $(BENCH_FLAGS) -o BENCH_sim.json

# Determinism smoke of the capacity planner: the same tiny capacity
# grid swept sequentially and with four workers must produce identical
# metrics snapshots — the search's convergence contract.
capacity-smoke:
	$(GO) run ./cmd/experiments -exp capacity -bench gzip -instr 5000 -maxtenants 3 \
		-progress=false -j 1 -metrics /tmp/ctrpred_capacity_j1.json >/dev/null
	$(GO) run ./cmd/experiments -exp capacity -bench gzip -instr 5000 -maxtenants 3 \
		-progress=false -j 4 -metrics /tmp/ctrpred_capacity_j4.json >/dev/null
	cmp /tmp/ctrpred_capacity_j1.json /tmp/ctrpred_capacity_j4.json
	rm -f /tmp/ctrpred_capacity_j1.json /tmp/ctrpred_capacity_j4.json

# Short coverage-guided smoke of the integrity tree's update/verify/
# corrupt interleavings; the committed seed corpus under
# internal/integrity/testdata runs as regression tests in plain
# `go test` too.
fuzz:
	$(GO) test ./internal/integrity -run '^$$' -fuzz FuzzIntegrityTree -fuzztime 30s

verify: build vet test race fuzz smoke loadtest-smoke chaos-smoke capacity-smoke

bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' $(BENCH_FLAGS) -o BENCH_sim.json
